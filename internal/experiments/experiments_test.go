package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"lacret/internal/obs"
	"lacret/internal/plan"
)

func TestCatalogNames(t *testing.T) {
	names := CatalogNames()
	if len(names) != 11 || names[0] != "s386" || names[10] != "s100k" {
		t.Fatalf("names = %v", names)
	}
}

func TestTable1NamesExcludeScaleTier(t *testing.T) {
	names := Table1Names()
	if len(names) != 10 || names[0] != "s386" || names[9] != "s5378" {
		t.Fatalf("names = %v", names)
	}
	for _, n := range names {
		if n == "s100k" {
			t.Fatal("scale tier in Table 1 defaults")
		}
	}
}

func TestTable1RowUnknownCircuit(t *testing.T) {
	if _, err := Table1Row("nosuch", DefaultConfig()); err == nil {
		t.Fatal("unknown circuit accepted")
	}
}

func TestTable1RowSmallCircuit(t *testing.T) {
	if testing.Short() {
		t.Skip("planning run in short mode")
	}
	row, err := Table1Row("s386", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if row.Circuit != "s386" {
		t.Fatalf("row = %+v", row)
	}
	if row.TclkNS <= 0 || row.TinitNS < row.TclkNS {
		t.Fatalf("periods: Tclk=%g Tinit=%g", row.TclkNS, row.TinitNS)
	}
	if row.MinArea.NF <= 0 || row.LAC.NF <= 0 {
		t.Fatalf("flip-flop counts: %+v", row)
	}
	if row.LAC.NFOA > row.MinArea.NFOA {
		t.Fatal("LAC worse than min-area")
	}
	if row.MinArea.NFOA == 0 && row.DecreasePct != -1 {
		t.Fatal("expected N/A decrease when min-area is clean")
	}
}

func TestFormatTable(t *testing.T) {
	rows := []Row{
		{
			Circuit: "sX", TclkNS: 2.5, TinitNS: 5.0,
			MinArea: Side{NFOA: 10, NF: 100, NFN: 20, Texec: time.Second},
			LAC:     Side{NFOA: 2, NF: 102, NFN: 25, NWR: 4, Texec: 2 * time.Second},
			NFOA2:   0, DecreasePct: 80,
		},
		{
			Circuit: "sY", TclkNS: 1, TinitNS: 2,
			MinArea:     Side{NFOA: 0, NF: 50, NFN: 5, Texec: time.Second},
			LAC:         Side{NFOA: 0, NF: 50, NFN: 5, NWR: 1, Texec: time.Second},
			NFOA2:       -1,
			DecreasePct: -1,
		},
		{
			Circuit: "sZ", TclkNS: 1, TinitNS: 2,
			MinArea:       Side{NFOA: 5, NF: 50, NFN: 5, Texec: time.Second},
			LAC:           Side{NFOA: 3, NF: 50, NFN: 5, NWR: 2, Texec: time.Second},
			NFOA2:         -1,
			SecondIterErr: "plan: target period 1 infeasible",
			DecreasePct:   40,
		},
	}
	out := FormatTable(rows, 60)
	for _, want := range []string{"sX", "2 (0)", "N/A", "80%", "(inf.)", "Average 60%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.LAC.Alpha != 0.2 || cfg.TclkSlack != 0.2 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.Whitespace <= 0 || cfg.Whitespace >= 1 {
		t.Fatalf("whitespace %g", cfg.Whitespace)
	}
}

func TestAlphaSweepSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("planning run in short mode")
	}
	pts, err := AlphaSweep("s386", DefaultConfig(), []float64{0.4, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Alpha != 0.1 || pts[1].Alpha != 0.4 {
		t.Fatalf("pts = %+v", pts)
	}
}

func TestAlphaSweepUnknown(t *testing.T) {
	if _, err := AlphaSweep("nosuch", DefaultConfig(), []float64{0.2}); err == nil {
		t.Fatal("unknown circuit accepted")
	}
}

func TestFormatMarkdown(t *testing.T) {
	rows := []Row{{
		Circuit: "sM", TclkNS: 2, TinitNS: 4,
		MinArea:     Side{NFOA: 10, NF: 100, NFN: 20, Texec: time.Second},
		LAC:         Side{NFOA: 0, NF: 100, NFN: 25, NWR: 3, Texec: time.Second},
		NFOA2:       -1,
		DecreasePct: 100,
	}}
	out := FormatMarkdown(rows, 100)
	for _, want := range []string{"| sM |", "100%", "Average N_FOA decrease: 100%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

// TestSecondIterationDrivesDecrease is the regression test for the
// DecreasePct column: when the second planning iteration runs, the column
// must be computed from the final (post-expansion) violation count NFOA2,
// not from the first-pass LAC count.
func TestSecondIterationDrivesDecrease(t *testing.T) {
	if testing.Short() {
		t.Skip("planning run in short mode")
	}
	cfg := DefaultConfig()
	cfg.Whitespace = 0.06 // starved blocks: forces first-pass violations
	row, err := Table1Row("s386", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if row.LAC.NFOA == 0 || row.NFOA2 < 0 {
		t.Fatalf("config no longer triggers the second iteration: %+v", row)
	}
	want := 100 * float64(row.MinArea.NFOA-row.NFOA2) / float64(row.MinArea.NFOA)
	if row.DecreasePct != want {
		t.Fatalf("DecreasePct=%g, want %g (MinArea=%d, final NFOA2=%d)",
			row.DecreasePct, want, row.MinArea.NFOA, row.NFOA2)
	}
	stale := 100 * float64(row.MinArea.NFOA-row.LAC.NFOA) / float64(row.MinArea.NFOA)
	if row.LAC.NFOA != row.NFOA2 && row.DecreasePct == stale {
		t.Fatal("DecreasePct still computed from the first-pass violation count")
	}
}

// canonicalRow serializes every deterministic field of a row; the wall-time
// fields (Texec, Timings) are inherently run-dependent and excluded.
func canonicalRow(r Row) string {
	return fmt.Sprintf("%s|%v|%v|%v|%d %d %d %d|%d %d %d %d|%d|%s|%v|%s",
		r.Circuit, r.TclkNS, r.TinitNS, r.TminNS,
		r.MinArea.NFOA, r.MinArea.NF, r.MinArea.NFN, r.MinArea.NWR,
		r.LAC.NFOA, r.LAC.NF, r.LAC.NFN, r.LAC.NWR,
		r.NFOA2, r.SecondIterErr, r.DecreasePct, r.Err)
}

// TestTable1ParallelMatchesSequential is the determinism contract of the
// worker pool: the parallel driver must produce rows byte-identical to the
// sequential driver on the same seeds, in stable input order.
func TestTable1ParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("planning runs in short mode")
	}
	circuits := []string{"s386", "s400", "s526"}
	cfg := DefaultConfig()
	seq, seqAvg := Table1Run(cfg, circuits, Table1Opts{Jobs: 1})
	par, parAvg := Table1Run(cfg, circuits, Table1Opts{Jobs: 4})
	if seqAvg != parAvg {
		t.Fatalf("averages differ: sequential %g, parallel %g", seqAvg, parAvg)
	}
	for i := range seq {
		a, b := canonicalRow(seq[i]), canonicalRow(par[i])
		if a != b {
			t.Fatalf("row %d differs:\nseq: %s\npar: %s", i, a, b)
		}
	}
}

func TestTable1RunErrorIsolation(t *testing.T) {
	rows, avg := Table1Run(DefaultConfig(), []string{"nosuch1", "nosuch2"}, Table1Opts{Jobs: 2})
	if len(rows) != 2 || avg != 0 {
		t.Fatalf("rows=%d avg=%g", len(rows), avg)
	}
	for i, name := range []string{"nosuch1", "nosuch2"} {
		if rows[i].Circuit != name || rows[i].Err == "" {
			t.Fatalf("row %d = %+v", i, rows[i])
		}
	}
	out := FormatTable(rows, avg)
	if !strings.Contains(out, "ERROR") {
		t.Fatalf("table does not surface row errors:\n%s", out)
	}
}

func TestTable1RunPanicIsolation(t *testing.T) {
	defer func() { table1Row = Table1RowContext }()
	var calls sync.Map
	table1Row = func(ctx context.Context, name string, cfg plan.Config) (*Row, error) {
		calls.Store(name, true)
		if name == "boom" {
			panic("synthetic crash")
		}
		return &Row{Circuit: name, NFOA2: -1, DecreasePct: -1}, nil
	}
	var mu sync.Mutex
	var seen []string
	rows, _ := Table1Run(plan.Config{}, []string{"ok1", "boom", "ok2"}, Table1Opts{
		Jobs: 3,
		Progress: func(r Row) {
			mu.Lock()
			seen = append(seen, r.Circuit)
			mu.Unlock()
		},
	})
	if rows[0].Circuit != "ok1" || rows[1].Circuit != "boom" || rows[2].Circuit != "ok2" {
		t.Fatalf("row order perturbed: %+v", rows)
	}
	if rows[0].Err != "" || rows[2].Err != "" {
		t.Fatalf("healthy rows carry errors: %+v", rows)
	}
	if !strings.Contains(rows[1].Err, "synthetic crash") {
		t.Fatalf("panic not converted to row error: %+v", rows[1])
	}
	if len(seen) != 3 {
		t.Fatalf("progress callback ran %d times, want 3 (%v)", len(seen), seen)
	}
	for _, name := range []string{"ok1", "boom", "ok2"} {
		if _, ok := calls.Load(name); !ok {
			t.Fatalf("circuit %s never planned", name)
		}
	}
}

func TestTable1SingleCircuit(t *testing.T) {
	if testing.Short() {
		t.Skip("planning run in short mode")
	}
	rows, avg, err := Table1(DefaultConfig(), []string{"s386"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Circuit != "s386" {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].DecreasePct < 0 && avg != 0 {
		t.Fatalf("avg %g with no violating rows", avg)
	}
	out := FormatTable(rows, avg)
	if !strings.Contains(out, "s386") {
		t.Fatal("table missing circuit")
	}
}

// TestWarmColdEquivalenceSeedCircuits arms the per-round warm/cold gate
// (core.Options.VerifyWarm) on full planning runs of seed circuits: every
// weighted min-area round of the LAC loop must match a from-scratch solve
// in labeling, register count, and weighted area, or planning fails.
func TestWarmColdEquivalenceSeedCircuits(t *testing.T) {
	if testing.Short() {
		t.Skip("planning run in short mode")
	}
	for _, name := range []string{"s386", "s400"} {
		cfg := DefaultConfig()
		cfg.LAC.VerifyWarm = true
		row, err := Table1Row(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if row.Err != "" {
			t.Fatalf("%s: %s", name, row.Err)
		}
	}
}

func TestFormatTraceSummaryAggregation(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	probe := func(d time.Duration) *obs.Span { return &obs.Span{Name: "probe", Dur: d} }
	rows := []Row{
		{
			Circuit: "a",
			Trace: []plan.StageEvent{
				{Stage: "route", Wall: ms(4)},
				{Stage: "periods", Wall: ms(10), Truncated: true,
					Sub: []*obs.Span{probe(ms(2)), probe(ms(6))}},
				{Stage: "lac", Wall: ms(3), Recovered: true,
					Sub: []*obs.Span{{Name: "lac-round", Dur: ms(3),
						Children: []*obs.Span{{Name: "mcmf-solve", Dur: ms(1)}}}}},
			},
		},
		{
			Circuit: "b",
			Trace: []plan.StageEvent{
				{Stage: "route", Wall: ms(7)},
				{Stage: "periods", Skipped: true},
			},
		},
		{
			// Errored rows still contribute their partial trace.
			Circuit: "c", Err: "stage route: boom",
			Trace: []plan.StageEvent{
				{Stage: "route", Wall: ms(1), Recovered: true},
			},
		},
	}
	out := FormatTraceSummary(rows)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	find := func(prefix string) string {
		t.Helper()
		for _, ln := range lines {
			if strings.HasPrefix(ln, prefix+" ") {
				return ln
			}
		}
		t.Fatalf("no %q line in summary:\n%s", prefix, out)
		return ""
	}
	check := func(line string, fields ...string) {
		t.Helper()
		for _, f := range fields {
			if !strings.Contains(line, f) {
				t.Errorf("line %q missing %q", line, f)
			}
		}
	}
	// route: 3 runs across all rows (the errored one included), worst 7ms.
	check(find("route"), " 3 ", "7.000ms")
	// periods: 1 run + 1 reused (skipped), 1 truncated, total = worst = 10ms.
	check(find("periods"), " 1 ", "10.000ms")
	if !strings.Contains(find("periods"), " 1       1      1      0") {
		t.Errorf("periods flags wrong: %q", find("periods"))
	}
	// lac recovered once, route recovered once (errored row).
	check(find("lac"), " 1 ")
	// Sub-stage rollups: path keys, counts, totals, nesting.
	check(find("periods/probe"), " 2 ", "8.000ms", "6.000ms")
	check(find("lac/lac-round"), " 1 ", "3.000ms")
	check(find("lac/lac-round/mcmf-solve"), " 1 ", "1.000ms")
	if !strings.Contains(lines[0], "trunc") || !strings.Contains(lines[0], "recov") {
		t.Fatalf("header missing flag columns: %q", lines[0])
	}
}

func TestFormatTraceSummaryEmpty(t *testing.T) {
	if out := FormatTraceSummary(nil); out != "" {
		t.Fatalf("summary of no rows = %q", out)
	}
	if out := FormatTraceSummary([]Row{{Circuit: "x"}}); out != "" {
		t.Fatalf("summary of traceless rows = %q", out)
	}
}
