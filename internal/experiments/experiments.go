// Package experiments regenerates the paper's evaluation: Table 1 (plain
// minimum-area retiming vs LAC-retiming across the benchmark suite, with a
// second planning iteration after floorplan expansion for violating
// circuits) and the supporting observations (fraction of flip-flops in
// interconnects, number of weighted retimings, runtimes), plus an alpha
// ablation for the weight-adaptation coefficient.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"lacret/internal/bench89"
	"lacret/internal/core"
	"lacret/internal/obs"
	"lacret/internal/plan"
)

// DefaultConfig returns the planning configuration used for Table 1: the
// paper's alpha = 0.2 and Tclk slack 0.2, with block whitespace sized so
// that register relocation creates local-area tension (blocks are sized
// from the original netlist, per the paper's §5 discussion).
func DefaultConfig() plan.Config {
	return plan.Config{
		Whitespace: 0.13,
		TclkSlack:  0.2,
		LAC:        core.Options{Alpha: 0.2, Nmax: 5, MaxIters: 20},
	}
}

// CatalogNames lists every benchmark circuit name in catalog order,
// including scale-tier stress circuits (s100k) that are not part of the
// paper's Table 1.
func CatalogNames() []string {
	var names []string
	for _, p := range bench89.Catalog() {
		names = append(names, p.Name)
	}
	return names
}

// Table1Names lists the paper's ten Table 1 circuits in catalog order.
func Table1Names() []string {
	return bench89.Table1Names()
}

// Side holds one retiming mode's Table 1 columns.
type Side struct {
	NFOA  int
	NF    int
	NFN   int
	NWR   int
	Texec time.Duration
}

// Row is one Table 1 line.
type Row struct {
	Circuit string
	TclkNS  float64
	TinitNS float64
	TminNS  float64
	MinArea Side
	LAC     Side
	// NFOA2 is the LAC violation count after the second planning
	// iteration; -1 when no second iteration was needed.
	NFOA2 int
	// SecondIterErr records a failed second iteration (the paper's s1269
	// case: the carried-over Tclk becomes infeasible after expansion).
	SecondIterErr string
	// DecreasePct is the Table 1 "N_FOA Decr." column, computed from the
	// final LAC violation count (NFOA2 when the second planning iteration
	// ran, the first-pass count otherwise); NaN-free: -1 when min-area had
	// no violations (printed as N/A).
	DecreasePct float64
	// Timings is the per-stage instrumentation of the first planning pass.
	Timings plan.Timings
	// Trace concatenates the stage events of every planning pass this row
	// ran (the second pass's reused partition appears as a Skipped event).
	Trace []plan.StageEvent
	// Err is set by the parallel driver when planning this circuit failed
	// or panicked; Trace and Timings still describe the stages that
	// completed before the failure, but the table columns are meaningless.
	Err string
}

// TruncatedCount returns the number of stage events across this row's
// planning passes that degraded at their budget deadline.
func (r *Row) TruncatedCount() int {
	n := 0
	for _, ev := range r.Trace {
		if ev.Truncated {
			n++
		}
	}
	return n
}

// RecoveredCount returns the number of stage events across this row's
// planning passes whose failure was a panic converted to a StageError.
func (r *Row) RecoveredCount() int {
	n := 0
	for _, ev := range r.Trace {
		if ev.Recovered {
			n++
		}
	}
	return n
}

// Passes splits the row's concatenated trace back into per-pass event
// slices: a new pass starts at every event with stage index 0 (each pass's
// events carry their position in that pass's stage list).
func (r *Row) Passes() [][]plan.StageEvent {
	var passes [][]plan.StageEvent
	for _, ev := range r.Trace {
		if ev.Index == 0 || len(passes) == 0 {
			passes = append(passes, nil)
		}
		passes[len(passes)-1] = append(passes[len(passes)-1], ev)
	}
	return passes
}

// RowReport converts one row into the run report's pass records, attaching
// the row's error to its failing pass (the first for a driver-level error,
// the second for a failed expansion iteration).
func RowReport(r Row) []obs.PassReport {
	var out []obs.PassReport
	for i, tr := range r.Passes() {
		out = append(out, obs.PassReport{Index: i, Stages: plan.StageReports(tr)})
	}
	if r.Err != "" {
		if len(out) == 0 {
			out = append(out, obs.PassReport{Index: 0})
		}
		out[len(out)-1].Err = r.Err
	}
	if r.SecondIterErr != "" {
		if len(out) < 2 {
			out = append(out, obs.PassReport{Index: len(out)})
		}
		out[len(out)-1].Err = r.SecondIterErr
	}
	return out
}

// Table1Row plans one circuit (by catalog name) and fills its row,
// running the second planning iteration when violations remain. The second
// pass goes through plan.PlanIterations, so it reuses the first pass's
// partition and re-enters the pipeline at the floorplan stage.
func Table1Row(name string, cfg plan.Config) (*Row, error) {
	return Table1RowContext(context.Background(), name, cfg)
}

// Table1RowContext is Table1Row under a context: cancellation stops the
// planning passes at their next stage boundary (cfg.Budget still governs
// the soft per-pass degradation). A budget-truncated pass completes and
// fills the row normally; its degraded stages are visible on Row.Trace.
func Table1RowContext(ctx context.Context, name string, cfg plan.Config) (*Row, error) {
	p, ok := bench89.ByName(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown circuit %q", name)
	}
	nl, err := bench89.Generate(p)
	if err != nil {
		return nil, err
	}
	if cfg.Seed == 0 {
		cfg.Seed = p.Seed
	}
	iters, err := plan.PlanIterationsContext(ctx, nl, cfg, 2)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %v", name, err)
	}
	if iters[0].Err != nil {
		// A failed first pass still returns its partial row: the trace of
		// the stages that did complete is what a summary needs to show where
		// the pass died.
		row := &Row{Circuit: name, NFOA2: -1, DecreasePct: -1}
		if res := iters[0].Result; res != nil {
			row.Timings = res.Timings
			row.Trace = append([]plan.StageEvent(nil), res.Trace...)
		}
		return row, fmt.Errorf("experiments: %s: %v", name, iters[0].Err)
	}
	res := iters[0].Result
	row := &Row{
		Circuit: name,
		TclkNS:  res.Tclk, TinitNS: res.Tinit, TminNS: res.Tmin,
		MinArea: Side{
			NFOA: res.MinArea.NFOA, NF: res.MinArea.NF,
			NFN: res.MinAreaNFN, NWR: res.MinArea.NWR, Texec: res.MinAreaTime,
		},
		LAC: Side{
			NFOA: res.LAC.NFOA, NF: res.LAC.NF,
			NFN: res.LACNFN, NWR: res.LAC.NWR, Texec: res.LACTime,
		},
		NFOA2:   -1,
		Timings: res.Timings,
		Trace:   append([]plan.StageEvent(nil), res.Trace...),
	}
	if len(iters) > 1 {
		// Second planning iteration after floorplan expansion, keeping
		// the same target period.
		if second := iters[1]; second.Err != nil {
			row.SecondIterErr = second.Err.Error()
			if second.Result != nil {
				row.Trace = append(row.Trace, second.Result.Trace...)
			}
		} else {
			row.NFOA2 = second.Result.LAC.NFOA
			row.Trace = append(row.Trace, second.Result.Trace...)
		}
	}
	// Table 1 reports the decrease against the *final* violation count:
	// the post-expansion NFOA2 when the second iteration ran, the
	// first-pass count otherwise.
	finalNFOA := row.LAC.NFOA
	if row.NFOA2 >= 0 {
		finalNFOA = row.NFOA2
	}
	if row.MinArea.NFOA > 0 {
		row.DecreasePct = 100 * float64(row.MinArea.NFOA-finalNFOA) / float64(row.MinArea.NFOA)
	} else {
		row.DecreasePct = -1
	}
	return row, nil
}

// Table1Opts tunes the Table 1 driver.
type Table1Opts struct {
	// Jobs is the number of circuits planned concurrently: 0 selects
	// GOMAXPROCS, 1 forces the sequential driver. Workers never exceed
	// the circuit count.
	Jobs int
	// Progress, when non-nil, is called once per circuit as its row
	// completes — possibly concurrently and out of catalog order, so the
	// callback must be safe for concurrent use.
	Progress func(Row)
	// Obs, when non-nil, collects the run's observability data: each
	// circuit becomes one root span (named after it) under which the
	// planning passes hang, and metrics from all workers land in the
	// recorder's shared registry. The single shared epoch is what lets a
	// Chrome trace render the worker pool as one timeline.
	Obs *obs.Recorder
}

// Table1Run plans the given circuits (default: the ten Table 1 circuits;
// scale-tier entries like s100k must be requested by name) on a
// worker pool and returns the rows in input order plus the average N_FOA
// decrease over rows where min-area retiming had violations (the paper's
// 84% headline). Each circuit's seed derives only from the catalog and the
// caller's config — never from worker scheduling — so the rows are
// identical to a sequential run. A panic while planning one circuit is
// recovered by its worker and reported in that circuit's Row.Err instead of
// killing the run; errored rows are excluded from the average.
func Table1Run(cfg plan.Config, circuits []string, opts Table1Opts) ([]Row, float64) {
	return Table1RunContext(context.Background(), cfg, circuits, opts)
}

// Table1RunContext is Table1Run under a context: circuits not yet handed to
// a worker when it fires are marked with the context's error instead of
// being planned, and in-flight circuits stop at their next stage boundary.
// Completed rows are always kept, so an interrupted run still reports
// everything it finished.
func Table1RunContext(ctx context.Context, cfg plan.Config, circuits []string, opts Table1Opts) ([]Row, float64) {
	if len(circuits) == 0 {
		circuits = Table1Names()
	}
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(circuits) {
		jobs = len(circuits)
	}
	rows := make([]Row, len(circuits))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				rows[i] = planRow(ctx, circuits[i], cfg, opts.Obs)
				if opts.Progress != nil {
					opts.Progress(rows[i])
				}
			}
		}()
	}
	fed := len(circuits)
	for i := range circuits {
		// ctx.Done() is nil on an uncancelable context, so this select
		// degenerates to the plain send and the run stays deterministic.
		select {
		case idx <- i:
		case <-ctx.Done():
			fed = i
		}
		if fed < len(circuits) {
			break
		}
	}
	close(idx)
	wg.Wait()
	for i := fed; i < len(circuits); i++ {
		if rows[i].Circuit == "" {
			rows[i] = Row{Circuit: circuits[i], NFOA2: -1, DecreasePct: -1,
				Err: "not planned: " + ctx.Err().Error()}
		}
	}
	return rows, Average(rows)
}

// table1Row is an indirection over Table1RowContext so tests can exercise
// the driver's panic isolation without a crashing circuit in the catalog.
var table1Row = Table1RowContext

// planRow runs Table1RowContext with panic isolation: a crash while planning
// one circuit becomes that circuit's row error. With a recorder, the whole
// circuit runs under one root span named after it.
func planRow(ctx context.Context, name string, cfg plan.Config, rec *obs.Recorder) (row Row) {
	defer func() {
		if r := recover(); r != nil {
			row = Row{Circuit: name, NFOA2: -1, DecreasePct: -1,
				Err: fmt.Sprintf("panic: %v", r)}
		}
	}()
	if rec != nil {
		cctx, sp := obs.StartSpan(obs.NewContext(ctx, rec), name)
		defer sp.End()
		ctx = cctx
	}
	p, err := table1Row(ctx, name, cfg)
	if err != nil {
		row := Row{Circuit: name, NFOA2: -1, DecreasePct: -1, Err: err.Error()}
		if p != nil {
			row.Timings = p.Timings
			row.Trace = p.Trace
		}
		return row
	}
	return *p
}

// Average returns the mean DecreasePct over rows where min-area retiming
// had violations; errored and N/A rows are skipped.
func Average(rows []Row) float64 {
	var sum float64
	var n int
	for _, r := range rows {
		if r.Err == "" && r.DecreasePct >= 0 {
			sum += r.DecreasePct
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Table1 is the sequential driver: it runs the full benchmark suite (or the
// given subset) one circuit at a time and fails on the first planning
// error. Use Table1Run for concurrency and per-row error isolation.
func Table1(cfg plan.Config, circuits []string) ([]Row, float64, error) {
	rows, avg := Table1Run(cfg, circuits, Table1Opts{Jobs: 1})
	for _, r := range rows {
		if r.Err != "" {
			return nil, 0, fmt.Errorf("experiments: %s: %s", r.Circuit, r.Err)
		}
	}
	return rows, avg, nil
}

// FormatTable renders rows in the paper's Table 1 layout.
func FormatTable(rows []Row, avg float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %7s %7s | %6s %5s %5s %8s | %12s %5s %5s %4s %8s | %7s\n",
		"circuit", "Tclk", "Tinit",
		"N_FOA", "N_F", "N_FN", "Texec",
		"N_FOA(2nd)", "N_F", "N_FN", "N_wr", "Texec", "Decr.")
	fmt.Fprintf(&b, "%-8s %7s %7s | %28s | %39s |\n",
		"", "(ns)", "(ns)", "-------- Min-Area Retiming --", "------------- LAC-Retiming ----------")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&b, "%-8s ERROR: %s\n", r.Circuit, r.Err)
			continue
		}
		nfoa2 := ""
		switch {
		case r.SecondIterErr != "":
			nfoa2 = fmt.Sprintf("%d (inf.)", r.LAC.NFOA)
		case r.NFOA2 >= 0:
			nfoa2 = fmt.Sprintf("%d (%d)", r.LAC.NFOA, r.NFOA2)
		default:
			nfoa2 = fmt.Sprintf("%d", r.LAC.NFOA)
		}
		decr := "N/A"
		if r.DecreasePct >= 0 {
			decr = fmt.Sprintf("%.0f%%", r.DecreasePct)
		}
		fmt.Fprintf(&b, "%-8s %7.2f %7.2f | %6d %5d %5d %8s | %12s %5d %5d %4d %8s | %7s\n",
			r.Circuit, r.TclkNS, r.TinitNS,
			r.MinArea.NFOA, r.MinArea.NF, r.MinArea.NFN, fmtDur(r.MinArea.Texec),
			nfoa2, r.LAC.NF, r.LAC.NFN, r.LAC.NWR, fmtDur(r.LAC.Texec), decr)
	}
	fmt.Fprintf(&b, "%-8s %*s Average %.0f%%\n", "", 100, "", avg)
	return b.String()
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.2fs", d.Seconds())
}

// FormatMarkdown renders rows as a Markdown table (for EXPERIMENTS.md).
func FormatMarkdown(rows []Row, avg float64) string {
	var b strings.Builder
	b.WriteString("| circuit | Tclk (ns) | Tinit (ns) | MA N_FOA | MA N_F | MA N_FN | MA Texec | LAC N_FOA (2nd) | LAC N_F | LAC N_FN | N_wr | LAC Texec | Decr. |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&b, "| %s | error: %s | | | | | | | | | | | |\n", r.Circuit, r.Err)
			continue
		}
		nfoa2 := fmt.Sprintf("%d", r.LAC.NFOA)
		switch {
		case r.SecondIterErr != "":
			nfoa2 = fmt.Sprintf("%d (infeasible)", r.LAC.NFOA)
		case r.NFOA2 >= 0:
			nfoa2 = fmt.Sprintf("%d (%d)", r.LAC.NFOA, r.NFOA2)
		}
		decr := "N/A"
		if r.DecreasePct >= 0 {
			decr = fmt.Sprintf("%.0f%%", r.DecreasePct)
		}
		fmt.Fprintf(&b, "| %s | %.2f | %.2f | %d | %d | %d | %s | %s | %d | %d | %d | %s | %s |\n",
			r.Circuit, r.TclkNS, r.TinitNS,
			r.MinArea.NFOA, r.MinArea.NF, r.MinArea.NFN, fmtDur(r.MinArea.Texec),
			nfoa2, r.LAC.NF, r.LAC.NFN, r.LAC.NWR, fmtDur(r.LAC.Texec), decr)
	}
	fmt.Fprintf(&b, "\n**Average N_FOA decrease: %.0f%%** (over circuits where min-area retiming violates)\n", avg)
	return b.String()
}

// FormatTraceSummary aggregates the stage events of all rows — across every
// planning pass of every circuit the worker pool ran — into one per-stage
// table: runs, reuse skips, budget truncations, panic recoveries, total and
// worst wall time. Stages appear in first-execution order. Errored rows
// contribute the stages that completed before their failure — exactly the
// rows whose trace matters most. When the events carry sub-stage spans (a
// recorder was installed), a second table rolls them up by path
// ("periods/probe", "lac/lac-round/mcmf-solve", ...).
func FormatTraceSummary(rows []Row) string {
	type agg struct {
		runs, skipped, truncated, recovered int
		total, max                          time.Duration
	}
	var order []string
	stages := map[string]*agg{}
	var subOrder []string
	type sagg struct {
		count      int
		total, max time.Duration
	}
	subs := map[string]*sagg{}
	var walk func(prefix string, spans []*obs.Span)
	walk = func(prefix string, spans []*obs.Span) {
		for _, sp := range spans {
			key := prefix + "/" + sp.Name
			a, ok := subs[key]
			if !ok {
				a = &sagg{}
				subs[key] = a
				subOrder = append(subOrder, key)
			}
			a.count++
			a.total += sp.Dur
			if sp.Dur > a.max {
				a.max = sp.Dur
			}
			walk(key, sp.Children)
		}
	}
	for _, r := range rows {
		for _, ev := range r.Trace {
			a, ok := stages[ev.Stage]
			if !ok {
				a = &agg{}
				stages[ev.Stage] = a
				order = append(order, ev.Stage)
			}
			if ev.Truncated {
				a.truncated++
			}
			if ev.Recovered {
				a.recovered++
			}
			walk(ev.Stage, ev.Sub)
			if ev.Skipped {
				a.skipped++
				continue
			}
			a.runs++
			a.total += ev.Wall
			if ev.Wall > a.max {
				a.max = ev.Wall
			}
		}
	}
	if len(order) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-11s %6s %7s %6s %6s %12s %12s\n",
		"stage", "runs", "reused", "trunc", "recov", "total", "worst")
	for _, name := range order {
		a := stages[name]
		fmt.Fprintf(&b, "%-11s %6d %7d %6d %6d %10.3fms %10.3fms\n",
			name, a.runs, a.skipped, a.truncated, a.recovered,
			float64(a.total.Microseconds())/1000, float64(a.max.Microseconds())/1000)
	}
	if len(subOrder) > 0 {
		fmt.Fprintf(&b, "\n%-35s %8s %12s %12s\n", "sub-stage", "count", "total", "worst")
		for _, key := range subOrder {
			a := subs[key]
			fmt.Fprintf(&b, "%-35s %8d %10.3fms %10.3fms\n",
				key, a.count,
				float64(a.total.Microseconds())/1000, float64(a.max.Microseconds())/1000)
		}
	}
	return b.String()
}

// AlphaPoint is one ablation sample.
type AlphaPoint struct {
	Alpha float64
	NFOA  int
	NWR   int
}

// AlphaSweep reruns LAC-retiming on one planned circuit across alpha
// values, reusing the planning result (weights reset each run). It
// reproduces the paper's observation that alpha around 0.2 works best.
func AlphaSweep(name string, cfg plan.Config, alphas []float64) ([]AlphaPoint, error) {
	p, ok := bench89.ByName(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown circuit %q", name)
	}
	nl, err := bench89.Generate(p)
	if err != nil {
		return nil, err
	}
	if cfg.Seed == 0 {
		cfg.Seed = p.Seed
	}
	res, err := plan.Plan(nl, cfg)
	if err != nil {
		return nil, err
	}
	var pts []AlphaPoint
	for _, a := range alphas {
		opt := cfg.LAC
		opt.Alpha = a
		opt.AlphaSet = true // a == 0 is a legitimate sweep point, not "default"
		lac, err := res.Problem.Solve(opt)
		if err != nil {
			return nil, err
		}
		pts = append(pts, AlphaPoint{Alpha: a, NFOA: lac.NFOA, NWR: lac.NWR})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Alpha < pts[j].Alpha })
	return pts, nil
}
