package sim

import (
	"fmt"
	"math/rand"

	"lacret/internal/retime"
)

// CheckRetimingEquivalence proves (by exhaustive 64-lane random
// simulation) that applying the retiming labels r to the graph preserves
// primary-output behavior: the original machine is simulated from the zero
// state, the retimed machine's registers are initialized from the
// corresponding trace cut (register j of retimed edge (u,v) holds
// y_u(t0 − w_r + j − r(u)), realizing y'_v(t) = y_v(t − r(v))), and both
// machines' output pins are compared for `steps` cycles under the same
// random stimulus. Any mismatch is returned as an error.
func CheckRetimingEquivalence(g *retime.Graph, ops []Op, r []int, steps int, seed int64) error {
	if steps <= 0 {
		steps = 64
	}
	retimed, err := g.Apply(r)
	if err != nil {
		return fmt.Errorf("sim: labels not applicable: %v", err)
	}
	maxAbsR := 0
	for _, x := range r {
		if x > maxAbsR {
			maxAbsR = x
		}
		if -x > maxAbsR {
			maxAbsR = -x
		}
	}
	maxWr := 1
	for e := 0; e < retimed.M(); e++ {
		if w := retimed.EdgeWeight(e); w > maxWr {
			maxWr = w
		}
	}
	t0 := maxWr + maxAbsR
	total := t0 + maxAbsR + steps

	m1, err := NewMachine(g, ops)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	inputs := make([]map[int]uint64, total)
	for t := range inputs {
		inputs[t] = map[int]uint64{}
		for _, v := range m1.Inputs {
			inputs[t][v] = rng.Uint64()
		}
	}

	// Original trace.
	trace := make([][]uint64, total)
	outs1 := make([]map[int]uint64, total)
	for t := 0; t < total; t++ {
		out, err := m1.Step(inputs[t])
		if err != nil {
			return err
		}
		outs1[t] = out
		trace[t] = append([]uint64(nil), m1.Values()...)
	}

	// Retimed machine with trace-consistent register initialization.
	m2, err := NewMachine(retimed, ops)
	if err != nil {
		return err
	}
	for e := 0; e < retimed.M(); e++ {
		wr := retimed.EdgeWeight(e)
		if wr == 0 {
			continue
		}
		from, _, _ := retimed.Edge(e)
		vals := make([]uint64, wr)
		for j := 0; j < wr; j++ {
			t := t0 - wr + j - r[from]
			if t < 0 || t >= total {
				return fmt.Errorf("sim: internal: trace index %d outside [0,%d)", t, total)
			}
			vals[j] = trace[t][from]
		}
		if err := m2.SetFIFO(e, vals); err != nil {
			return err
		}
	}

	for tau := 0; tau < steps; tau++ {
		t := t0 + tau
		out2, err := m2.Step(inputs[t])
		if err != nil {
			return err
		}
		for v, want := range outs1[t] {
			if out2[v] != want {
				return fmt.Errorf("sim: output %s differs at cycle %d: original %016x, retimed %016x",
					g.Name(v), t, want, out2[v])
			}
		}
		// Stronger check: every zero-lag vertex must match the original
		// exactly (y'_v(t) = y_v(t + r(v)) with r(v) = 0). This also
		// covers graphs without explicit port pins.
		vals2 := m2.Values()
		for v := 0; v < g.N(); v++ {
			if r[v] == 0 && vals2[v] != trace[t][v] {
				return fmt.Errorf("sim: zero-lag vertex %s differs at cycle %d: original %016x, retimed %016x",
					g.Name(v), t, trace[t][v], vals2[v])
			}
		}
	}
	return nil
}
