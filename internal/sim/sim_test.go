package sim

import (
	"math/rand"
	"strings"
	"testing"

	"lacret/internal/netlist"
	"lacret/internal/retime"
)

// xorPipe: pi -> x(NOT) -> po with one register on x->po.
func xorPipe() (*retime.Graph, []Op) {
	g := retime.NewGraph()
	pi := g.AddVertex("pi", retime.KindPort, 0)
	x := g.AddVertex("x", retime.KindUnit, 1)
	po := g.AddVertex("po", retime.KindPort, 0)
	g.AddEdge(pi, x, 0)
	g.AddEdge(x, po, 1)
	return g, []Op{OpInput, OpNot, OpBuf}
}

func TestMachineDelaysThroughRegister(t *testing.T) {
	g, ops := xorPipe()
	m, err := NewMachine(g, ops)
	if err != nil {
		t.Fatal(err)
	}
	// Cycle 0: input 0b01; register initially 0 -> po sees 0.
	out, err := m.Step(map[int]uint64{0: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out[2] != 0 {
		t.Fatalf("cycle 0 output %x", out[2])
	}
	// Cycle 1: po sees NOT(1) from cycle 0.
	out, _ = m.Step(map[int]uint64{0: 0})
	if out[2] != ^uint64(1) {
		t.Fatalf("cycle 1 output %x, want %x", out[2], ^uint64(1))
	}
	// Cycle 2: po sees NOT(0).
	out, _ = m.Step(map[int]uint64{0: 0})
	if out[2] != ^uint64(0) {
		t.Fatalf("cycle 2 output %x", out[2])
	}
}

func TestMachineGateFunctions(t *testing.T) {
	// Two inputs into each binary gate; check truth tables on lanes.
	cases := []struct {
		op   Op
		a, b uint64
		want uint64
	}{
		{OpAnd, 0b1100, 0b1010, 0b1000},
		{OpNand, 0b1100, 0b1010, ^uint64(0b1000)},
		{OpOr, 0b1100, 0b1010, 0b1110},
		{OpNor, 0b1100, 0b1010, ^uint64(0b1110)},
		{OpXor, 0b1100, 0b1010, 0b0110},
		{OpXnor, 0b1100, 0b1010, ^uint64(0b0110)},
	}
	for _, c := range cases {
		g := retime.NewGraph()
		a := g.AddVertex("a", retime.KindPort, 0)
		b := g.AddVertex("b", retime.KindPort, 0)
		u := g.AddVertex("u", retime.KindUnit, 1)
		po := g.AddVertex("po", retime.KindPort, 0)
		g.AddEdge(a, u, 0)
		g.AddEdge(b, u, 0)
		g.AddEdge(u, po, 0)
		m, err := NewMachine(g, []Op{OpInput, OpInput, c.op, OpBuf})
		if err != nil {
			t.Fatal(err)
		}
		out, err := m.Step(map[int]uint64{a: c.a, b: c.b})
		if err != nil {
			t.Fatal(err)
		}
		if out[po] != c.want {
			t.Fatalf("op %d: got %x, want %x", c.op, out[po], c.want)
		}
	}
}

func TestOpFromString(t *testing.T) {
	for s, want := range map[string]Op{
		"AND": OpAnd, "NAND": OpNand, "OR": OpOr, "NOR": OpNor,
		"XOR": OpXor, "XNOR": OpXnor, "NOT": OpNot, "BUF": OpBuf, "BUFF": OpBuf, "": OpBuf,
	} {
		got, err := OpFromString(s)
		if err != nil || got != want {
			t.Fatalf("OpFromString(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := OpFromString("MUX"); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestMachineValidation(t *testing.T) {
	g, ops := xorPipe()
	if _, err := NewMachine(g, ops[:1]); err == nil {
		t.Fatal("short ops accepted")
	}
	if _, err := NewMachine(g, []Op{OpInput, OpInput, OpBuf}); err == nil {
		t.Fatal("input with fanin accepted")
	}
	m, _ := NewMachine(g, ops)
	if _, err := m.Step(map[int]uint64{}); err == nil {
		t.Fatal("missing input accepted")
	}
	if err := m.SetFIFO(99, nil); err == nil {
		t.Fatal("bad edge accepted")
	}
	if err := m.SetFIFO(1, []uint64{1, 2}); err == nil {
		t.Fatal("bad FIFO length accepted")
	}
}

func TestEquivalenceSimplePipeline(t *testing.T) {
	// pi -> a -> b -> po with two registers bunched; balancing retiming
	// r(a) = -1 moves one forward.
	g := retime.NewGraph()
	pi := g.AddVertex("pi", retime.KindPort, 0)
	a := g.AddVertex("a", retime.KindUnit, 1)
	b := g.AddVertex("b", retime.KindUnit, 1)
	po := g.AddVertex("po", retime.KindPort, 0)
	g.AddEdge(pi, a, 2)
	g.AddEdge(a, b, 0)
	g.AddEdge(b, po, 0)
	ops := []Op{OpInput, OpNot, OpNot, OpBuf}
	if err := CheckRetimingEquivalence(g, ops, []int{0, -1, 0, 0}, 48, 7); err != nil {
		t.Fatal(err)
	}
	if err := CheckRetimingEquivalence(g, ops, []int{0, -1, -1, 0}, 48, 7); err != nil {
		t.Fatal(err)
	}
}

func TestEquivalenceDetectsIllegalLabels(t *testing.T) {
	g, ops := xorPipe()
	// r that would drive a weight negative must be rejected.
	if err := CheckRetimingEquivalence(g, ops, []int{0, -2, 0}, 16, 1); err == nil ||
		!strings.Contains(err.Error(), "not applicable") {
		t.Fatalf("err = %v", err)
	}
}

func TestMachineDetectsFunctionalDifference(t *testing.T) {
	// Sanity for the detector itself: two machines differing in one gate
	// function produce different outputs under random stimulus.
	build := func(op Op) *Machine {
		g := retime.NewGraph()
		a := g.AddVertex("a", retime.KindPort, 0)
		b := g.AddVertex("b", retime.KindPort, 0)
		u := g.AddVertex("u", retime.KindUnit, 1)
		po := g.AddVertex("po", retime.KindPort, 0)
		g.AddEdge(a, u, 0)
		g.AddEdge(b, u, 0)
		g.AddEdge(u, po, 0)
		m, err := NewMachine(g, []Op{OpInput, OpInput, op, OpBuf})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1, m2 := build(OpAnd), build(OpOr)
	rng := rand.New(rand.NewSource(3))
	differs := false
	for i := 0; i < 16; i++ {
		in := map[int]uint64{0: rng.Uint64(), 1: rng.Uint64()}
		o1, _ := m1.Step(in)
		o2, _ := m2.Step(in)
		if o1[3] != o2[3] {
			differs = true
		}
	}
	if !differs {
		t.Fatal("AND and OR machines agreed on random stimulus")
	}
}

// The headline property test: min-area and min-period retimings of random
// sequential circuits preserve behavior exactly.
func TestQuickRetimingPreservesBehavior(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	opsPool := []Op{OpAnd, OpNand, OpOr, OpNor, OpXor, OpXnor}
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(6)
		g := retime.NewGraph()
		ops := make([]Op, 0, n+2)
		pi := g.AddVertex("pi", retime.KindPort, 0)
		ops = append(ops, OpInput)
		for i := 0; i < n; i++ {
			g.AddVertex("u", retime.KindUnit, float64(1+rng.Intn(3)))
			ops = append(ops, opsPool[rng.Intn(len(opsPool))])
		}
		po := g.AddVertex("po", retime.KindPort, 0)
		ops = append(ops, OpBuf)
		// Random structure: chain + extra edges; backward edges carry regs.
		g.AddEdge(pi, 1, rng.Intn(2))
		for i := 1; i < n; i++ {
			g.AddEdge(i, i+1, rng.Intn(2))
		}
		g.AddEdge(n, po, rng.Intn(2))
		for k := 0; k < n; k++ {
			a := 1 + rng.Intn(n)
			b := 1 + rng.Intn(n)
			if a == b {
				continue
			}
			w := rng.Intn(2)
			if b <= a && w == 0 {
				w = 1
			}
			g.AddEdge(a, b, w)
		}
		if g.Validate() != nil {
			continue
		}
		// Min-period retiming.
		_, r, err := g.MinPeriod(1e-4)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := CheckRetimingEquivalence(g, ops, r, 48, int64(trial)); err != nil {
			t.Fatalf("trial %d (min-period): %v", trial, err)
		}
		// Min-area retiming at a loose period.
		p, _ := g.Period()
		ma, err := g.MinArea(p * 2)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := CheckRetimingEquivalence(g, ops, ma.R, 48, int64(trial)); err != nil {
			t.Fatalf("trial %d (min-area): %v", trial, err)
		}
	}
}

func TestOpsFromGraph(t *testing.T) {
	nl := netlist.New("ops")
	a, _ := nl.AddInput("a")
	g1, _ := nl.AddGate("g1", "NAND", a, a)
	f, _ := nl.AddDFF("f", g1)
	g2, _ := nl.AddGate("g2", "NOT", f)
	nl.MarkOutput(g2)
	col, err := nl.Collapse()
	if err != nil {
		t.Fatal(err)
	}
	rg, vmap, err := retime.FromCollapsed(nl, col)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := OpsFromGraph(rg, nl)
	if err != nil {
		t.Fatal(err)
	}
	if ops[vmap[a]] != OpInput || ops[vmap[g1]] != OpNand || ops[vmap[g2]] != OpNot {
		t.Fatalf("ops = %v", ops)
	}
	// The PO pin (last vertex) must be a buffer.
	if ops[rg.N()-1] != OpBuf {
		t.Fatalf("po op %v", ops[rg.N()-1])
	}
	// And the whole thing simulates: NAND(a,a) = NOT a, g2 = NOT(reg).
	m, err := NewMachine(rg, ops)
	if err != nil {
		t.Fatal(err)
	}
	m.Step(map[int]uint64{vmap[a]: 0xF0})
	out, _ := m.Step(map[int]uint64{vmap[a]: 0})
	if out[rg.N()-1] != ^(^uint64(0xF0)) { // NOT(NAND(a,a)) = a, delayed one cycle
		t.Fatalf("out %x", out[rg.N()-1])
	}
}

func TestOpsFromGraphUnsupported(t *testing.T) {
	nl := netlist.New("bad")
	a, _ := nl.AddInput("a")
	g1, _ := nl.AddGate("g1", "AND", a)
	nl.MarkOutput(g1)
	nl.Node(g1).Op = "MUX"
	col, _ := nl.Collapse()
	rg, _, err := retime.FromCollapsed(nl, col)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpsFromGraph(rg, nl); err == nil {
		t.Fatal("unsupported op accepted")
	}
}
