// Package sim is a cycle-based, bit-parallel functional simulator for
// retiming graphs. It exists to validate the paper's central promise —
// that LAC-retiming preserves system behavior exactly — by simulating the
// circuit before and after retiming and comparing the primary-output
// streams bit for bit.
//
// Each vertex carries a Boolean function (interconnect units and output
// pins are buffers); each edge carries a FIFO of length equal to its
// register count. Sixty-four independent random stimulus vectors run in
// parallel through uint64 lanes.
//
// The equivalence check realizes the classical retiming correspondence
// y'_v(t) = y_v(t − r(v)): the original machine is simulated from the zero
// state to build a trace, the retimed machine's registers are initialized
// from that trace at a consistent cut, and from then on every primary
// output (whose lag is zero, ports being pinned) must match exactly.
package sim

import (
	"fmt"

	"lacret/internal/netlist"
	"lacret/internal/retime"
)

// Op is a vertex's Boolean function.
type Op uint8

// Supported vertex functions.
const (
	OpInput Op = iota // primary input: value supplied per step
	OpBuf             // identity (wires, output pins, BUF gates)
	OpNot
	OpAnd
	OpNand
	OpOr
	OpNor
	OpXor
	OpXnor
)

// OpFromString maps netlist gate functions to simulator ops.
func OpFromString(s string) (Op, error) {
	switch s {
	case "BUF", "BUFF", "":
		return OpBuf, nil
	case "NOT":
		return OpNot, nil
	case "AND":
		return OpAnd, nil
	case "NAND":
		return OpNand, nil
	case "OR":
		return OpOr, nil
	case "NOR":
		return OpNor, nil
	case "XOR":
		return OpXor, nil
	case "XNOR":
		return OpXnor, nil
	default:
		return 0, fmt.Errorf("sim: unsupported gate function %q", s)
	}
}

// OpsFromGraph derives per-vertex ops for a planner-produced retiming
// graph: units take their originating netlist gate's function, wires and
// output pins are buffers, input ports are inputs.
func OpsFromGraph(g *retime.Graph, nl *netlist.Netlist) ([]Op, error) {
	ops := make([]Op, g.N())
	for v := 0; v < g.N(); v++ {
		switch g.Kind(v) {
		case retime.KindWire:
			ops[v] = OpBuf
		case retime.KindPort:
			if len(g.In(v)) == 0 {
				ops[v] = OpInput
			} else {
				ops[v] = OpBuf
			}
		case retime.KindUnit:
			id := g.Origin(v)
			if id < 0 {
				ops[v] = OpBuf
				continue
			}
			op, err := OpFromString(nl.Node(id).Op)
			if err != nil {
				return nil, err
			}
			ops[v] = op
		}
	}
	return ops, nil
}

// Machine simulates one retiming graph.
type Machine struct {
	g    *retime.Graph
	ops  []Op
	topo []int      // zero-weight topological order
	fifo [][]uint64 // per edge: oldest first, length = edge weight
	vals []uint64   // current vertex outputs
	// Inputs and POPins list the vertex IDs of inputs and output pins.
	Inputs []int
	POPins []int
}

// NewMachine builds a simulator for the graph with the given ops. Edge
// FIFOs start at zero.
func NewMachine(g *retime.Graph, ops []Op) (*Machine, error) {
	if len(ops) != g.N() {
		return nil, fmt.Errorf("sim: %d ops for %d vertices", len(ops), g.N())
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{g: g, ops: ops, vals: make([]uint64, g.N())}
	for v := 0; v < g.N(); v++ {
		switch {
		case ops[v] == OpInput:
			if len(g.In(v)) != 0 {
				return nil, fmt.Errorf("sim: input vertex %d has fanin", v)
			}
			m.Inputs = append(m.Inputs, v)
		case g.Kind(v) == retime.KindPort:
			m.POPins = append(m.POPins, v)
		}
		if (ops[v] == OpNot || ops[v] == OpBuf) && len(g.In(v)) > 1 {
			return nil, fmt.Errorf("sim: unary vertex %d (%s) has %d fanins", v, g.Name(v), len(g.In(v)))
		}
	}
	m.fifo = make([][]uint64, g.M())
	for e := 0; e < g.M(); e++ {
		m.fifo[e] = make([]uint64, g.EdgeWeight(e))
	}
	order, err := zeroTopo(g)
	if err != nil {
		return nil, err
	}
	m.topo = order
	return m, nil
}

// SetFIFO overwrites edge e's register contents (oldest value first).
func (m *Machine) SetFIFO(e int, vals []uint64) error {
	if e < 0 || e >= m.g.M() {
		return fmt.Errorf("sim: edge %d out of range", e)
	}
	if len(vals) != m.g.EdgeWeight(e) {
		return fmt.Errorf("sim: edge %d holds %d registers, got %d values", e, m.g.EdgeWeight(e), len(vals))
	}
	copy(m.fifo[e], vals)
	return nil
}

// Values returns the vertex outputs computed by the last Step.
func (m *Machine) Values() []uint64 { return m.vals }

// Step advances one clock cycle: inputs supplies the value of every input
// vertex; the returned map holds the output-pin values for this cycle.
func (m *Machine) Step(inputs map[int]uint64) (map[int]uint64, error) {
	for _, v := range m.Inputs {
		if _, ok := inputs[v]; !ok {
			return nil, fmt.Errorf("sim: missing input for vertex %d (%s)", v, m.g.Name(v))
		}
	}
	// Evaluate in zero-weight topological order; registered fanins read
	// the oldest FIFO entry.
	for _, v := range m.topo {
		if m.ops[v] == OpInput {
			m.vals[v] = inputs[v]
			continue
		}
		m.vals[v] = m.eval(v)
	}
	// Shift FIFOs: push this cycle's source outputs.
	for e := 0; e < m.g.M(); e++ {
		if len(m.fifo[e]) == 0 {
			continue
		}
		from, _, _ := m.g.Edge(e)
		copy(m.fifo[e], m.fifo[e][1:])
		m.fifo[e][len(m.fifo[e])-1] = m.vals[from]
	}
	out := make(map[int]uint64, len(m.POPins))
	for _, v := range m.POPins {
		out[v] = m.vals[v]
	}
	return out, nil
}

// eval computes vertex v's output from its fanin values.
func (m *Machine) eval(v int) uint64 {
	var acc uint64
	first := true
	for _, e := range m.g.In(v) {
		from, _, w := m.g.Edge(e)
		var val uint64
		if w == 0 {
			val = m.vals[from]
		} else {
			val = m.fifo[e][0]
		}
		if first {
			acc = val
			first = false
			continue
		}
		switch m.ops[v] {
		case OpAnd, OpNand:
			acc &= val
		case OpOr, OpNor:
			acc |= val
		case OpXor, OpXnor:
			acc ^= val
		default: // Buf/Not with multiple fanins cannot happen (validated)
			acc = val
		}
	}
	switch m.ops[v] {
	case OpNot, OpNand, OpNor, OpXnor:
		return ^acc
	default:
		return acc
	}
}

// zeroTopo orders vertices so zero-weight edges go forward.
func zeroTopo(g *retime.Graph) ([]int, error) {
	n := g.N()
	indeg := make([]int, n)
	for e := 0; e < g.M(); e++ {
		_, to, w := g.Edge(e)
		if w == 0 {
			indeg[to]++
		}
	}
	var queue, order []int
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, e := range g.Out(v) {
			_, to, w := g.Edge(e)
			if w != 0 {
				continue
			}
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("sim: combinational cycle")
	}
	return order, nil
}
