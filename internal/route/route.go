// Package route implements congestion-aware global routing on the tile
// grid: Steiner trees grown by iterative maze routing (each sink is joined
// to the growing tree by a shortest congestion-weighted path), with
// negotiated-congestion rip-up and re-route in the style of PathFinder.
// This realizes the "global routing" step of the paper's interconnect
// planning flow; any timing-driven congestion-aware router could be
// substituted, as the paper notes.
package route

import (
	"container/heap"
	"context"
	"fmt"
	"sort"

	"lacret/internal/obs"
	"lacret/internal/tile"
)

// Net is a routing request between grid cells.
type Net struct {
	ID     int
	Source int
	Sinks  []int
}

// Options tunes the router.
type Options struct {
	// Capacity is the routing capacity per tile boundary in wires
	// (default 16).
	Capacity float64
	// MaxIters bounds rip-up and re-route rounds (default 8).
	MaxIters int
	// HistoryStep is the history-cost increment added to each overflowed
	// edge per round (default 1).
	HistoryStep float64
}

// Tree is a routed net: a set of grid cells with parent pointers toward
// the source.
type Tree struct {
	NetID  int
	Source int
	Parent map[int]int // cell -> parent cell; source maps to -1
}

// PathTo returns the cell sequence from the tree's source to the sink
// (inclusive). The sink must be part of the tree.
func (t *Tree) PathTo(sink int) ([]int, error) {
	var rev []int
	cur := sink
	for cur != -1 {
		rev = append(rev, cur)
		p, ok := t.Parent[cur]
		if !ok {
			return nil, fmt.Errorf("route: cell %d not in tree of net %d", cur, t.NetID)
		}
		cur = p
		if len(rev) > len(t.Parent)+1 {
			return nil, fmt.Errorf("route: parent cycle in tree of net %d", t.NetID)
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// Edges returns the undirected tile-boundary edges used by the tree.
func (t *Tree) Edges() [][2]int {
	var es [][2]int
	for c, p := range t.Parent {
		if p >= 0 {
			a, b := c, p
			if a > b {
				a, b = b, a
			}
			es = append(es, [2]int{a, b})
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
	return es
}

// Result is the outcome of routing all nets.
type Result struct {
	Trees []Tree
	// Overflow is the number of tile-boundary edges over capacity after
	// the final round.
	Overflow int
	// MaxUsage is the peak edge usage.
	MaxUsage float64
	// Wirelength is the total routed length (um) over all tree edges.
	Wirelength float64
	// Iters is the number of rip-up rounds performed.
	Iters int
	// Truncated marks an anytime result: the context expired before the
	// rip-up loop converged, and the trees are the best (lowest-overflow)
	// state seen across the completed rounds.
	Truncated bool
}

// PathLength returns the geometric length (um) of a cell path on grid g.
func PathLength(g *tile.Grid, path []int) float64 {
	l := 0.0
	for i := 1; i < len(path); i++ {
		if sameRow(g, path[i-1], path[i]) {
			l += g.TileW
		} else {
			l += g.TileH
		}
	}
	return l
}

func sameRow(g *tile.Grid, a, b int) bool { return a/g.Cols == b/g.Cols }

// edgeIndexer maps undirected boundary edges to dense indices:
// horizontal edges first (rows * (cols-1)), then vertical.
type edgeIndexer struct {
	rows, cols int
}

func (ei edgeIndexer) count() int {
	return ei.rows*(ei.cols-1) + (ei.rows-1)*ei.cols
}

// index returns the edge index between adjacent cells a, b (a != b).
func (ei edgeIndexer) index(a, b int) int {
	if a > b {
		a, b = b, a
	}
	ra, ca := a/ei.cols, a%ei.cols
	if b == a+1 && ca+1 < ei.cols { // horizontal
		return ra*(ei.cols-1) + ca
	}
	// vertical: b == a + cols
	return ei.rows*(ei.cols-1) + ra*ei.cols + ca
}

// neighbors appends the grid neighbors of cell c to buf.
func neighbors(g *tile.Grid, c int, buf []int) []int {
	r, col := c/g.Cols, c%g.Cols
	if col > 0 {
		buf = append(buf, c-1)
	}
	if col+1 < g.Cols {
		buf = append(buf, c+1)
	}
	if r > 0 {
		buf = append(buf, c-g.Cols)
	}
	if r+1 < g.Rows {
		buf = append(buf, c+g.Cols)
	}
	return buf
}

type pqItem struct {
	cell int
	dist float64
}

type pq []pqItem

func (h pq) Len() int { return len(h) }
func (h pq) Less(i, j int) bool {
	return h[i].dist < h[j].dist || (h[i].dist == h[j].dist && h[i].cell < h[j].cell)
}
func (h pq) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pq) Push(x interface{}) { *h = append(*h, x.(pqItem)) }
func (h *pq) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Route routes all nets on the grid. Nets with no sinks (or only sinks
// equal to the source) produce single-cell trees. Routing is deterministic.
func Route(g *tile.Grid, nets []Net, opt Options) (*Result, error) {
	return RouteContext(context.Background(), g, nets, opt)
}

// RouteContext is Route as an anytime computation: the initial routing
// always completes (every sink connected), and the context's deadline is
// checked between rip-up rounds. On expiry the router stops, restores the
// lowest-overflow tree set seen across the completed rounds, and returns it
// with Result.Truncated set — no error. A context that can never be
// canceled (Done() == nil) skips the snapshot bookkeeping entirely and
// reproduces Route bit for bit.
func RouteContext(ctx context.Context, g *tile.Grid, nets []Net, opt Options) (*Result, error) {
	if opt.Capacity <= 0 {
		opt.Capacity = 16
	}
	if opt.MaxIters <= 0 {
		opt.MaxIters = 8
	}
	if opt.HistoryStep <= 0 {
		opt.HistoryStep = 1
	}
	for _, n := range nets {
		if n.Source < 0 || n.Source >= g.NumCells() {
			return nil, fmt.Errorf("route: net %d source %d out of range", n.ID, n.Source)
		}
		for _, s := range n.Sinks {
			if s < 0 || s >= g.NumCells() {
				return nil, fmt.Errorf("route: net %d sink %d out of range", n.ID, s)
			}
		}
	}

	ei := edgeIndexer{rows: g.Rows, cols: g.Cols}
	usage := make([]float64, ei.count())
	hist := make([]float64, ei.count())
	trees := make([]Tree, len(nets))

	// edgeCost is the negotiated congestion cost of using edge e.
	edgeCost := func(e int) float64 {
		c := 1.0 + hist[e]
		if over := usage[e] + 1 - opt.Capacity; over > 0 {
			c += over * over * 4
		}
		return c
	}

	routeNet := func(n Net) Tree {
		tr := Tree{NetID: n.ID, Source: n.Source, Parent: map[int]int{n.Source: -1}}
		// Deduplicate sinks; drop those equal to the source.
		pending := map[int]bool{}
		for _, s := range n.Sinks {
			if s != n.Source {
				pending[s] = true
			}
		}
		dist := make([]float64, g.NumCells())
		prev := make([]int, g.NumCells())
		var buf [4]int
		for len(pending) > 0 {
			// Multi-source Dijkstra from the current tree to the nearest
			// pending sink.
			for i := range dist {
				dist[i] = -1
				prev[i] = -2
			}
			h := &pq{}
			seeds := make([]int, 0, len(tr.Parent))
			for c := range tr.Parent {
				seeds = append(seeds, c)
			}
			sort.Ints(seeds) // deterministic tie-breaking
			for _, c := range seeds {
				dist[c] = 0
				prev[c] = -1 // already in tree
				heap.Push(h, pqItem{cell: c, dist: 0})
			}
			reached := -1
			for h.Len() > 0 {
				it := heap.Pop(h).(pqItem)
				if it.dist > dist[it.cell] {
					continue
				}
				if pending[it.cell] {
					reached = it.cell
					break
				}
				for _, nb := range neighbors(g, it.cell, buf[:0]) {
					e := ei.index(it.cell, nb)
					nd := it.dist + edgeCost(e)
					if dist[nb] < 0 || nd < dist[nb] {
						dist[nb] = nd
						prev[nb] = it.cell
						heap.Push(h, pqItem{cell: nb, dist: nd})
					}
				}
			}
			if reached < 0 {
				break // unreachable (cannot happen on a connected grid)
			}
			// Splice the path into the tree and charge edge usage.
			cur := reached
			for prev[cur] != -1 {
				p := prev[cur]
				if _, in := tr.Parent[cur]; !in {
					tr.Parent[cur] = p
					usage[ei.index(cur, p)]++
				}
				cur = p
			}
			delete(pending, reached)
		}
		return tr
	}

	ripNet := func(tr Tree) {
		for c, p := range tr.Parent {
			if p >= 0 {
				usage[ei.index(c, p)]--
			}
		}
	}

	// Observability handles: nil no-ops unless the caller installed a
	// recorder on the context. Each rip-up iteration (including the final
	// check-only one) becomes one "round" sub-stage span; the gauge tracks
	// the live overflow count for the debug listener.
	reg := obs.FromContext(ctx).Registry()
	gOver := reg.Gauge("route.overflow_edges")
	cRounds := reg.Counter("route.rounds")

	// Initial routing in net order.
	_, spInit := obs.StartSpan(ctx, "initial")
	spInit.SetAttr("nets", float64(len(nets)))
	for i, n := range nets {
		trees[i] = routeNet(n)
	}
	spInit.End()

	// Anytime bookkeeping: only when the context can actually fire does the
	// router snapshot the lowest-overflow state, so the common uncancelable
	// path stays allocation- and behavior-identical to the original loop.
	track := ctx.Done() != nil
	bestOverflow := -1
	var bestTrees []Tree
	res := &Result{}
	for iter := 1; ; iter++ {
		res.Iters = iter
		_, spRound := obs.StartSpan(ctx, "round")
		cRounds.Inc()
		// Find overflowed edges.
		overEdges := map[int]bool{}
		for e, u := range usage {
			if u > opt.Capacity {
				overEdges[e] = true
			}
		}
		gOver.Set(float64(len(overEdges)))
		spRound.SetAttr("overflow_edges", float64(len(overEdges)))
		if track && (bestOverflow < 0 || len(overEdges) < bestOverflow) {
			bestOverflow = len(overEdges)
			bestTrees = snapshotTrees(trees)
		}
		if len(overEdges) == 0 || iter >= opt.MaxIters {
			spRound.End()
			break
		}
		if err := ctx.Err(); err != nil {
			res.Truncated = true
			// The snapshot above covers the current state, so a restore is
			// only needed when a strictly earlier round was better.
			if bestOverflow >= 0 && bestOverflow < len(overEdges) {
				trees = bestTrees
				for e := range usage {
					usage[e] = 0
				}
				for i := range trees {
					for c, p := range trees[i].Parent {
						if p >= 0 {
							usage[ei.index(c, p)]++
						}
					}
				}
			}
			spRound.End()
			break
		}
		for e := range overEdges {
			hist[e] += opt.HistoryStep
		}
		// Rip up and re-route nets crossing overflowed edges.
		ripped := 0
		for i := range trees {
			crosses := false
			for c, p := range trees[i].Parent {
				if p >= 0 && overEdges[ei.index(c, p)] {
					crosses = true
					break
				}
			}
			if crosses {
				ripNet(trees[i])
				trees[i] = routeNet(nets[i])
				ripped++
			}
		}
		spRound.SetAttr("ripped_nets", float64(ripped))
		spRound.End()
	}

	for e, u := range usage {
		if u > opt.Capacity {
			res.Overflow++
		}
		if u > res.MaxUsage {
			res.MaxUsage = u
		}
		_ = e
	}
	res.Trees = trees
	// Count edges and multiply once: summing TileW/TileH term by term in
	// map-iteration order would make the last bits of Wirelength depend on
	// Go's randomized map order.
	nh, nv := 0, 0
	for i := range trees {
		for c, p := range trees[i].Parent {
			if p < 0 {
				continue
			}
			if sameRow(g, c, p) {
				nh++
			} else {
				nv++
			}
		}
	}
	res.Wirelength = float64(nh)*g.TileW + float64(nv)*g.TileH
	return res, nil
}

// snapshotTrees deep-copies the routed trees (parent maps included) for the
// anytime best-state bookkeeping.
func snapshotTrees(trees []Tree) []Tree {
	out := make([]Tree, len(trees))
	for i, tr := range trees {
		cp := Tree{NetID: tr.NetID, Source: tr.Source, Parent: make(map[int]int, len(tr.Parent))}
		for c, p := range tr.Parent {
			cp.Parent[c] = p
		}
		out[i] = cp
	}
	return out
}
