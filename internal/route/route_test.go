package route

import (
	"math/rand"
	"testing"

	"lacret/internal/floorplan"
	"lacret/internal/tile"
)

// openGrid returns an all-free grid of the given shape with 100um tiles.
func openGrid(t *testing.T, rows, cols int) *tile.Grid {
	t.Helper()
	pl := &floorplan.Placement{ChipW: float64(cols) * 100, ChipH: float64(rows) * 100}
	g, err := tile.Build(pl, nil, nil, tile.Params{Rows: rows, Cols: cols})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRouteSingleNetShortestPath(t *testing.T) {
	g := openGrid(t, 4, 4)
	nets := []Net{{ID: 0, Source: 0, Sinks: []int{3}}}
	res, err := Route(g, nets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path, err := res.Trees[0].PathTo(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 4 { // 0,1,2,3 along the row
		t.Fatalf("path %v", path)
	}
	if PathLength(g, path) != 300 {
		t.Fatalf("length %g", PathLength(g, path))
	}
	if res.Overflow != 0 {
		t.Fatalf("overflow %d", res.Overflow)
	}
}

func TestRouteMultiSinkTreeShares(t *testing.T) {
	g := openGrid(t, 5, 5)
	// Source center-left, two sinks on the right column: tree should share
	// a trunk (total edges < sum of individual Manhattan paths).
	src := 2*5 + 0
	s1 := 0*5 + 4
	s2 := 4*5 + 4
	res, err := Route(g, []Net{{ID: 0, Source: src, Sinks: []int{s1, s2}}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trees[0]
	for _, s := range []int{s1, s2} {
		path, err := tr.PathTo(s)
		if err != nil {
			t.Fatal(err)
		}
		if path[0] != src || path[len(path)-1] != s {
			t.Fatalf("bad path %v", path)
		}
	}
	edges := tr.Edges()
	// Individual Manhattan paths: 4+2=6 and 4+2=6 -> 12 edges unshared;
	// a shared tree needs at most 10.
	if len(edges) > 10 {
		t.Fatalf("no sharing: %d edges", len(edges))
	}
}

func TestRouteDegenerateNets(t *testing.T) {
	g := openGrid(t, 3, 3)
	nets := []Net{
		{ID: 0, Source: 4, Sinks: nil},
		{ID: 1, Source: 4, Sinks: []int{4, 4}},
	}
	res, err := Route(g, nets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range res.Trees {
		if len(tr.Parent) != 1 {
			t.Fatalf("net %d: tree %v", i, tr.Parent)
		}
		path, err := tr.PathTo(4)
		if err != nil || len(path) != 1 {
			t.Fatalf("net %d: path %v err %v", i, path, err)
		}
	}
	if res.Wirelength != 0 {
		t.Fatalf("wirelength %g", res.Wirelength)
	}
}

func TestRouteCongestionSpreads(t *testing.T) {
	// Two nets between the same endpoints with per-edge capacity 1: one
	// must detour to a parallel row; rip-up should leave no overflow.
	g := openGrid(t, 4, 3)
	nets := []Net{
		{ID: 0, Source: 0, Sinks: []int{2}},
		{ID: 1, Source: 0, Sinks: []int{2}},
	}
	res, err := Route(g, nets, Options{Capacity: 1, MaxIters: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overflow != 0 {
		t.Fatalf("overflow %d after %d iters (max usage %g)", res.Overflow, res.Iters, res.MaxUsage)
	}
	if res.MaxUsage > 1 {
		t.Fatalf("max usage %g", res.MaxUsage)
	}
}

func TestRouteDeterministic(t *testing.T) {
	g := openGrid(t, 6, 6)
	rng := rand.New(rand.NewSource(4))
	var nets []Net
	for i := 0; i < 12; i++ {
		nets = append(nets, Net{ID: i, Source: rng.Intn(36), Sinks: []int{rng.Intn(36), rng.Intn(36)}})
	}
	a, err := Route(g, nets, Options{Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Route(g, nets, Options{Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Wirelength != b.Wirelength || a.Overflow != b.Overflow {
		t.Fatal("routing not deterministic")
	}
	for i := range a.Trees {
		ea, eb := a.Trees[i].Edges(), b.Trees[i].Edges()
		if len(ea) != len(eb) {
			t.Fatalf("net %d: different trees", i)
		}
		for j := range ea {
			if ea[j] != eb[j] {
				t.Fatalf("net %d: different trees", i)
			}
		}
	}
}

func TestRouteErrors(t *testing.T) {
	g := openGrid(t, 3, 3)
	if _, err := Route(g, []Net{{Source: 99}}, Options{}); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := Route(g, []Net{{Source: 0, Sinks: []int{-1}}}, Options{}); err == nil {
		t.Fatal("bad sink accepted")
	}
}

func TestPathToErrors(t *testing.T) {
	tr := Tree{NetID: 0, Source: 0, Parent: map[int]int{0: -1}}
	if _, err := tr.PathTo(5); err == nil {
		t.Fatal("missing sink accepted")
	}
}

func TestEdgeIndexerBijective(t *testing.T) {
	ei := edgeIndexer{rows: 5, cols: 7}
	seen := map[int]bool{}
	n := 0
	for r := 0; r < 5; r++ {
		for c := 0; c < 7; c++ {
			cell := r*7 + c
			if c+1 < 7 {
				e := ei.index(cell, cell+1)
				if seen[e] {
					t.Fatalf("dup edge %d", e)
				}
				seen[e] = true
				n++
			}
			if r+1 < 5 {
				e := ei.index(cell, cell+7)
				if seen[e] {
					t.Fatalf("dup edge %d", e)
				}
				seen[e] = true
				n++
			}
		}
	}
	if n != ei.count() {
		t.Fatalf("count %d != %d", n, ei.count())
	}
	// Symmetric.
	if ei.index(0, 1) != ei.index(1, 0) || ei.index(0, 7) != ei.index(7, 0) {
		t.Fatal("not symmetric")
	}
}

func TestRouteManyRandomNetsAllConnected(t *testing.T) {
	g := openGrid(t, 8, 8)
	rng := rand.New(rand.NewSource(99))
	var nets []Net
	for i := 0; i < 40; i++ {
		n := Net{ID: i, Source: rng.Intn(64)}
		for j := 0; j < 1+rng.Intn(4); j++ {
			n.Sinks = append(n.Sinks, rng.Intn(64))
		}
		nets = append(nets, n)
	}
	res, err := Route(g, nets, Options{Capacity: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range res.Trees {
		for _, s := range nets[i].Sinks {
			path, err := tr.PathTo(s)
			if err != nil {
				t.Fatalf("net %d sink %d: %v", i, s, err)
			}
			// Path must be contiguous on the grid.
			for k := 1; k < len(path); k++ {
				a, b := path[k-1], path[k]
				dr := a/g.Cols - b/g.Cols
				dc := a%g.Cols - b%g.Cols
				if dr*dr+dc*dc != 1 {
					t.Fatalf("net %d: non-adjacent step %d->%d", i, a, b)
				}
			}
		}
	}
}

// TestRouteWirelengthMatchesTrees: the reported wirelength must equal the
// sum over trees of their edges' geometric lengths.
func TestRouteWirelengthMatchesTrees(t *testing.T) {
	g := openGrid(t, 7, 5)
	rng := rand.New(rand.NewSource(12))
	var nets []Net
	for i := 0; i < 15; i++ {
		nets = append(nets, Net{ID: i, Source: rng.Intn(35), Sinks: []int{rng.Intn(35), rng.Intn(35)}})
	}
	res, err := Route(g, nets, Options{Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, tr := range res.Trees {
		for _, e := range tr.Edges() {
			if e[0]/g.Cols == e[1]/g.Cols {
				total += g.TileW
			} else {
				total += g.TileH
			}
		}
	}
	if total != res.Wirelength {
		t.Fatalf("wirelength %g != recomputed %g", res.Wirelength, total)
	}
}

// TestRouteTreeIsAcyclic: parent maps must form a forest rooted at the
// source (PathTo already errors on cycles; verify sizes too).
func TestRouteTreeIsAcyclic(t *testing.T) {
	g := openGrid(t, 6, 6)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		n := Net{ID: trial, Source: rng.Intn(36)}
		for j := 0; j < 3; j++ {
			n.Sinks = append(n.Sinks, rng.Intn(36))
		}
		res, err := Route(g, []Net{n}, Options{Capacity: 8})
		if err != nil {
			t.Fatal(err)
		}
		tr := res.Trees[0]
		// Every tree node reaches the source.
		for c := range tr.Parent {
			if _, err := tr.PathTo(c); err != nil {
				t.Fatalf("trial %d: node %d cannot reach source: %v", trial, c, err)
			}
		}
		// Edge count = node count - 1 (tree property).
		if len(tr.Edges()) != len(tr.Parent)-1 {
			t.Fatalf("trial %d: %d edges for %d nodes", trial, len(tr.Edges()), len(tr.Parent))
		}
	}
}
